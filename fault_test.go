package flexsnoop_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"flexsnoop"
)

// faultOpts builds one run's options with a parsed fault plan and a
// JSONL telemetry trace capturing the run's event fingerprint.
func faultOpts(t *testing.T, spec string, shard bool, trace *bytes.Buffer) flexsnoop.Options {
	t.Helper()
	plan, err := flexsnoop.ParseFaultPlan(spec)
	if err != nil {
		t.Fatalf("ParseFaultPlan(%q): %v", spec, err)
	}
	opts := flexsnoop.Options{
		OpsPerCore: 400, Seed: 7,
		Faults:     plan,
		CheckEvery: 2000,
		ShardRings: shard,
	}
	if trace != nil {
		opts.Telemetry = &flexsnoop.TelemetryOptions{
			Trace: trace, TraceFormat: flexsnoop.TraceFormatJSONL,
		}
	}
	return opts
}

// TestFaultDeterminism pins the fault layer's reproducibility contract:
// the same seed and the same plan give bit-identical final statistics
// and a byte-identical telemetry fingerprint, in serial mode and with
// sharded ring arbitration.
func TestFaultDeterminism(t *testing.T) {
	const spec = "kind=drop,rate=0.05,seed=3;kind=delay,rate=0.1,delay=120,seed=9;kind=dup,rate=0.03,seed=5"
	var traceA, traceB, traceC bytes.Buffer
	a, err := flexsnoop.Run(flexsnoop.SupersetAgg, "water-sp", faultOpts(t, spec, false, &traceA))
	if err != nil {
		t.Fatal(err)
	}
	b, err := flexsnoop.Run(flexsnoop.SupersetAgg, "water-sp", faultOpts(t, spec, false, &traceB))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Stats != b.Stats || a.EnergyNJ != b.EnergyNJ {
		t.Fatal("identical faulty runs produced different results — fault determinism broken")
	}
	if !bytes.Equal(traceA.Bytes(), traceB.Bytes()) {
		t.Fatal("identical faulty runs produced different telemetry traces")
	}
	c, err := flexsnoop.Run(flexsnoop.SupersetAgg, "water-sp", faultOpts(t, spec, true, &traceC))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != c.Cycles || a.Stats != c.Stats || a.EnergyNJ != c.EnergyNJ {
		t.Fatalf("sharded faulty run diverged from serial: %d vs %d cycles", c.Cycles, a.Cycles)
	}
	if !bytes.Equal(traceA.Bytes(), traceC.Bytes()) {
		t.Fatal("sharded faulty run produced a different telemetry trace")
	}
	if a.Stats.FaultDrops == 0 || a.Stats.FaultDelays == 0 || a.Stats.FaultDups == 0 {
		t.Errorf("fault plan injected nothing: drops=%d delays=%d dups=%d",
			a.Stats.FaultDrops, a.Stats.FaultDelays, a.Stats.FaultDups)
	}
}

// TestFaultPlansComplete is the documented robustness envelope: every
// plan with drop/delay rates at or below 10% completes every workload
// under the continuous checker, for both an adaptive and a baseline
// algorithm.
func TestFaultPlansComplete(t *testing.T) {
	plans := []struct{ name, spec string }{
		{"drop10", "kind=drop,rate=0.1,seed=1"},
		{"jitter", "kind=delay,rate=0.1,delay=200,seed=2"},
		{"mixed", "kind=drop,rate=0.05,seed=3;kind=dup,rate=0.05,seed=4;kind=delay,rate=0.05,delay=80,seed=5"},
	}
	for _, alg := range []flexsnoop.Algorithm{flexsnoop.Lazy, flexsnoop.SupersetAgg} {
		for _, p := range plans {
			res, err := flexsnoop.Run(alg, "fft", faultOpts(t, p.spec, false, nil))
			if err != nil {
				t.Errorf("%v/%s: %v", alg, p.name, err)
				continue
			}
			if res.Stats.FaultDrops+res.Stats.FaultDelays+res.Stats.FaultDups == 0 {
				t.Errorf("%v/%s: no faults injected", alg, p.name)
			}
		}
	}
}

// TestFaultMatrixDriver exercises the RunFaultMatrix experiment driver
// end to end.
func TestFaultMatrixDriver(t *testing.T) {
	drop, err := flexsnoop.ParseFaultPlan("kind=drop,rate=0.05,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := flexsnoop.RunFaultMatrix("fft", []flexsnoop.FaultScenario{{Name: "drop5", Plan: drop}},
		flexsnoop.FigureOptions{OpsPerCore: 300, Algorithms: []flexsnoop.Algorithm{flexsnoop.Lazy, flexsnoop.SupersetAgg}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if c.Result.Cycles == 0 || c.Result.Stats.FaultDrops == 0 {
			t.Errorf("%s/%v: empty cell (%d cycles, %d drops)", c.Scenario, c.Algorithm, c.Result.Cycles, c.Result.Stats.FaultDrops)
		}
	}
}

// TestTimeoutRecovery drives the snoop-response deadline: a small rate
// of very large delays (beyond the deadline) forces timeouts and
// retransmits, and the run must still complete with coherent state.
func TestTimeoutRecovery(t *testing.T) {
	res, err := flexsnoop.Run(flexsnoop.SupersetAgg, "fft",
		faultOpts(t, "kind=delay,rate=0.02,delay=20000,seed=3", false, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SnoopTimeouts == 0 {
		t.Error("beyond-deadline delays produced no snoop timeouts")
	}
	if res.Stats.Retries == 0 {
		t.Error("timeouts produced no retransmits")
	}
}

// TestWatchdogLivelock verifies a plan that can make no progress (every
// segment dropped) is detected by the watchdog within its window,
// classified as livelock (retry churn keeps advancing), and dumps the
// transaction graph into the telemetry trace.
func TestWatchdogLivelock(t *testing.T) {
	plan, err := flexsnoop.ParseFaultPlan("kind=drop,rate=1,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	_, err = flexsnoop.Run(flexsnoop.Lazy, "fft", flexsnoop.Options{
		OpsPerCore: 200, Seed: 7,
		Faults:         plan,
		WatchdogWindow: 20000,
		Telemetry: &flexsnoop.TelemetryOptions{
			Trace: &trace, TraceFormat: flexsnoop.TraceFormatJSONL,
		},
	})
	if err == nil {
		t.Fatal("total drop plan completed — watchdog never fired")
	}
	if !strings.Contains(err.Error(), "watchdog") || !strings.Contains(err.Error(), "livelock") {
		t.Errorf("error lacks watchdog livelock verdict: %v", err)
	}
	out := trace.String()
	if !strings.Contains(out, "watchdog") || !strings.Contains(out, "watchdog-dump") {
		t.Error("telemetry trace lacks the watchdog dump")
	}
}

// TestWatchdogDegrade verifies graceful degradation: a transient total
// outage trips the watchdog, which forces Eager forwarding on live
// lines instead of failing; once the outage window closes the run
// completes.
func TestWatchdogDegrade(t *testing.T) {
	plan, err := flexsnoop.ParseFaultPlan("kind=drop,rate=1,until=15000,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := flexsnoop.Run(flexsnoop.SupersetAgg, "fft", flexsnoop.Options{
		OpsPerCore: 200, Seed: 7,
		Faults:          plan,
		WatchdogWindow:  10000,
		WatchdogDegrade: true,
	})
	if err != nil {
		t.Fatalf("degrading watchdog failed the run: %v", err)
	}
	if res.Stats.DegradedLines == 0 {
		t.Error("watchdog degraded nothing during the outage")
	}
}

// TestRobustnessLayersCycleIdentical pins the acceptance contract: with
// faults disabled, arming the watchdog and the continuous checker is
// cycle-identical to a bare run.
func TestRobustnessLayersCycleIdentical(t *testing.T) {
	base, err := flexsnoop.Run(flexsnoop.SupersetCon, "water-sp", flexsnoop.Options{OpsPerCore: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	armed, err := flexsnoop.Run(flexsnoop.SupersetCon, "water-sp", flexsnoop.Options{
		OpsPerCore: 400, Seed: 7,
		WatchdogWindow: 5000, CheckEvery: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != armed.Cycles || base.Stats != armed.Stats || base.EnergyNJ != armed.EnergyNJ {
		t.Fatalf("armed watchdog+checker perturbed the run: %d vs %d cycles", armed.Cycles, base.Cycles)
	}
}

// TestParseFaultPlanErrors pins the parser's error surface at the public
// API: every malformed spec wraps ErrFaultPlan, and the message names
// what is wrong (callers echo it verbatim to CLI users).
func TestParseFaultPlanErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring the error must carry
	}{
		{"kind=meteor", "meteor"},                  // unknown kind
		{"kind=drop,rate=1.5", "rate"},             // rate above 1
		{"kind=drop,rate=-0.1", "rate"},            // rate below 0
		{"kind=drop,rate=0.5;", "empty"},           // trailing separator
		{";kind=drop", "empty"},                    // leading separator
		{"rate=0.5", "kind"},                       // missing kind
		{"kind=drop,rate", "key=value"},            // field without '='
		{"kind=delay,rate=0.1,delay=abc", "delay"}, // unparsable value
	}
	for _, tc := range cases {
		_, err := flexsnoop.ParseFaultPlan(tc.spec)
		if !errors.Is(err, flexsnoop.ErrFaultPlan) {
			t.Errorf("ParseFaultPlan(%q) = %v, want ErrFaultPlan", tc.spec, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseFaultPlan(%q) error %q does not mention %q", tc.spec, err, tc.want)
		}
	}
}

// TestFaultOptionValidation covers the error surface: malformed plans
// wrap ErrFaultPlan, and the configuration validator rejects the
// latency/backoff degeneracies the retry machinery depends on.
func TestFaultOptionValidation(t *testing.T) {
	if _, err := flexsnoop.ParseFaultPlan("kind=sharknado"); !errors.Is(err, flexsnoop.ErrFaultPlan) {
		t.Errorf("bad kind: got %v, want ErrFaultPlan", err)
	}
	bad := &flexsnoop.FaultPlan{Rules: []flexsnoop.FaultRule{{Kind: flexsnoop.FaultDrop, Rate: 2}}}
	if _, err := flexsnoop.Run(flexsnoop.Lazy, "fft", flexsnoop.Options{Faults: bad}); !errors.Is(err, flexsnoop.ErrFaultPlan) {
		t.Errorf("out-of-range rate: got %v, want ErrFaultPlan", err)
	}
	if _, err := flexsnoop.Run(flexsnoop.Lazy, "fft", flexsnoop.Options{
		Tweak: func(m *flexsnoop.MachineConfig) { m.RingLinkCycles = 0 },
	}); !errors.Is(err, flexsnoop.ErrBadConfig) {
		t.Errorf("zero link latency: got %v, want ErrBadConfig", err)
	}
	if _, err := flexsnoop.Run(flexsnoop.Lazy, "fft", flexsnoop.Options{
		Tweak: func(m *flexsnoop.MachineConfig) { m.RetryBackoffCycles = 0 },
	}); !errors.Is(err, flexsnoop.ErrBadConfig) {
		t.Errorf("zero retry backoff: got %v, want ErrBadConfig", err)
	}
}
