package flexsnoop_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"flexsnoop"
)

// These tests pin the determinism contract across the hot-path data
// structures: the simulation's observable output — the full Result
// document and the telemetry trace byte stream — must be bit-identical
// between serial and ShardRings execution, and bit-identical across
// repeated fault-injected runs, traced or not. Any hash-table or
// iteration-order dependence introduced on the hot path breaks one of
// these comparisons immediately.

// runTraced executes one run and returns its Result as canonical JSON
// plus the raw trace bytes.
func runTraced(t *testing.T, alg flexsnoop.Algorithm, wl string, opts flexsnoop.Options) ([]byte, []byte) {
	t.Helper()
	var trace bytes.Buffer
	opts.Telemetry = &flexsnoop.TelemetryOptions{Trace: &trace, TraceFormat: flexsnoop.TraceFormatJSONL}
	res, err := flexsnoop.Run(alg, wl, opts)
	if err != nil {
		t.Fatalf("%v/%s: %v", alg, wl, err)
	}
	doc, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return doc, trace.Bytes()
}

func TestGoldenSerialShardByteIdentity(t *testing.T) {
	for _, alg := range []flexsnoop.Algorithm{flexsnoop.Lazy, flexsnoop.SupersetAgg, flexsnoop.Exact} {
		serialDoc, serialTrace := runTraced(t, alg, "barnes", flexsnoop.Options{OpsPerCore: 300, Seed: 5})
		shardDoc, shardTrace := runTraced(t, alg, "barnes", flexsnoop.Options{OpsPerCore: 300, Seed: 5, ShardRings: true})
		if !bytes.Equal(serialDoc, shardDoc) {
			t.Errorf("%v: serial and -shard results differ:\n serial: %s\n shard:  %s", alg, serialDoc, shardDoc)
		}
		if !bytes.Equal(serialTrace, shardTrace) {
			t.Errorf("%v: serial and -shard trace bytes differ (%d vs %d bytes)", alg, len(serialTrace), len(shardTrace))
		}
	}
}

func TestGoldenFaultRunByteIdentity(t *testing.T) {
	plan, err := flexsnoop.ParseFaultPlan("kind=drop,rate=0.03,seed=3;kind=dup,rate=0.03,seed=4;kind=delay,rate=0.05,delay=80,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	opts := flexsnoop.Options{OpsPerCore: 250, Seed: 5, Faults: plan, CheckEvery: 5000}

	doc1, trace1 := runTraced(t, flexsnoop.SupersetAgg, "fft", opts)
	doc2, trace2 := runTraced(t, flexsnoop.SupersetAgg, "fft", opts)
	if !bytes.Equal(doc1, doc2) {
		t.Errorf("repeated fault runs differ:\n 1: %s\n 2: %s", doc1, doc2)
	}
	if !bytes.Equal(trace1, trace2) {
		t.Errorf("repeated fault runs produced different trace bytes (%d vs %d)", len(trace1), len(trace2))
	}

	// Tracing itself must not perturb the simulation: an untraced run's
	// Result matches the traced one byte for byte.
	res, err := flexsnoop.Run(flexsnoop.SupersetAgg, "fft", opts)
	if err != nil {
		t.Fatal(err)
	}
	plainDoc, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc1, plainDoc) {
		t.Errorf("traced and untraced fault runs differ:\n traced:   %s\n untraced: %s", doc1, plainDoc)
	}

	// Fault injection happens in the serial merge stage, so the sharded
	// fault run must match too.
	shardOpts := opts
	shardOpts.ShardRings = true
	shardDoc, shardTrace := runTraced(t, flexsnoop.SupersetAgg, "fft", shardOpts)
	if !bytes.Equal(doc1, shardDoc) {
		t.Errorf("serial and -shard fault runs differ:\n serial: %s\n shard:  %s", doc1, shardDoc)
	}
	if !bytes.Equal(trace1, shardTrace) {
		t.Errorf("serial and -shard fault runs produced different trace bytes (%d vs %d)", len(trace1), len(shardTrace))
	}
}
