package flexsnoop_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"flexsnoop"
	"flexsnoop/internal/service"
)

// TestSensitivityRemoteRunner drives RunSensitivity through the
// FigureOptions.Runner seam against a real service server (the same path
// `sweep -remote` uses) and requires the derived figures to be
// bit-identical to the in-process sweep: determinism makes remote
// execution an invisible implementation detail.
func TestSensitivityRemoteRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("remote sweep runs the full sensitivity grid twice")
	}

	opts := flexsnoop.FigureOptions{OpsPerCore: 200, Seed: 3, Apps: []string{"fft"}}
	local, err := flexsnoop.RunSensitivity(opts)
	if err != nil {
		t.Fatalf("in-process sweep: %v", err)
	}

	srv, err := service.New(service.Config{Workers: 4, QueueCapacity: 4})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &service.Client{BaseURL: ts.URL, PollInterval: 2 * time.Millisecond}

	remoteOpts := opts
	remoteOpts.Runner = func(ctx context.Context, alg flexsnoop.Algorithm, workload string, o flexsnoop.Options) (flexsnoop.Result, error) {
		spec, err := service.SpecFor(alg, workload, o)
		if err != nil {
			return flexsnoop.Result{}, err
		}
		return c.Run(ctx, spec)
	}
	remote, err := flexsnoop.RunSensitivity(remoteOpts)
	if err != nil {
		t.Fatalf("remote sweep: %v", err)
	}

	// Cells are emitted in map-iteration order; sort both sides the way
	// cmd/sweep does before rendering.
	sortCells := func(cells []flexsnoop.SensitivityResult) {
		sort.Slice(cells, func(i, j int) bool {
			a, b := cells[i], cells[j]
			if a.Algorithm != b.Algorithm {
				return a.Algorithm < b.Algorithm
			}
			if a.Class != b.Class {
				return a.Class < b.Class
			}
			return a.Predictor < b.Predictor
		})
	}
	sortCells(local.Cells)
	sortCells(remote.Cells)
	if !reflect.DeepEqual(local.Cells, remote.Cells) {
		t.Error("remote sensitivity cells differ from in-process cells")
	}
	if !reflect.DeepEqual(local.Perfect, remote.Perfect) {
		t.Error("remote perfect-predictor rows differ from in-process rows")
	}

	// The sweep's queue is smaller than its cell count, so the run
	// exercised backpressure retries; every cell still completed.
	stats := srv.Stats()
	if stats.RunsCompleted == 0 {
		t.Error("server reports no completed runs after a remote sweep")
	}
}
